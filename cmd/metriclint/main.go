// Command metriclint enforces the repository's metric naming convention:
// every obs instrument registered with a literal name — Counter, Gauge,
// Histogram, and their Vec variants — must match ^sky_[a-z0-9_]+$, so the
// exposition stays one coherent, grep-able namespace. It walks the module's
// Go sources (skipping tests, where throwaway names are fine) with
// go/parser and exits 1 listing every violation.
//
// Run with: go run ./cmd/metriclint
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// registerFuncs are the obs.Registry methods whose first argument is a
// metric name.
var registerFuncs = map[string]bool{
	"Counter":      true,
	"CounterVec":   true,
	"Gauge":        true,
	"GaugeVec":     true,
	"Histogram":    true,
	"HistogramVec": true,
}

func validName(name string) bool {
	if !strings.HasPrefix(name, "sky_") {
		return false
	}
	for _, r := range name[len("sky_"):] {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return false
		}
	}
	return len(name) > len("sky_")
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	fset := token.NewFileSet()
	violations := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		// The obs package itself registers nothing with literal sky_ names in
		// its own API bodies, but skip it anyway: its doc examples and panics
		// mention names that are not registrations.
		if f.Name.Name == "obs" {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registerFuncs[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, uerr := strconv.Unquote(lit.Value)
			if uerr != nil {
				return true
			}
			if !validName(name) {
				fmt.Fprintf(os.Stderr, "%s: metric name %q does not match ^sky_[a-z0-9_]+$\n",
					fset.Position(lit.Pos()), name)
				violations++
			}
			return true
		})
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(2)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Println("metriclint: all metric names ok")
}
