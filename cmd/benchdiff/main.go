// Command benchdiff compares `go test -bench` output against a committed
// baseline (BENCH_sched.json) and fails when a tier-1 benchmark regressed
// beyond tolerance — the CI gate that catches the next silent scheduler
// slide (PR 3 regressed BenchmarkSchedulerCycle +8% with nothing to notice).
//
// The baseline stores one entry set per CPU model (`cpu → benchmarks`), so
// a heterogeneous runner fleet gates times instead of warning: each
// machine's run compares against the baseline recorded on the same CPU
// string. Two metrics are gated differently:
//
//   - allocs/op is deterministic for these benchmarks (fixed seeds, fixed
//     workloads), so it gates hard on any machine, against any recorded
//     CPU's entries (they must all agree);
//   - ns/op is hardware-dependent: with -gate auto (default) it gates only
//     when the run's `cpu:` line has a recorded baseline and warns
//     otherwise. On shared CI runners pass -gate allocs — virtualized
//     hosts report a generic cpu string that can collide across unlike
//     hardware (and noisy neighbours swamp a 20% tolerance). Record your
//     own machine's baseline with -update (it merges into the per-CPU
//     map, preserving other machines' entries).
//
// Usage:
//
//	go test -bench '...' -benchtime 3x -run '^$' . | tee bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_sched.json -input bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's recorded baseline.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// CPUBaseline is one CPU model's benchmark record.
type CPUBaseline struct {
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Baseline is the committed benchmark record: entries keyed by the `cpu:`
// line go test reports. The legacy single-CPU fields are still read (and
// rewritten into the map on the next -update).
type Baseline struct {
	Baselines map[string]CPUBaseline `json:"baselines,omitempty"`

	// Legacy single-CPU format.
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks,omitempty"`
}

// normalize folds a legacy single-CPU record into the per-CPU map.
func (b *Baseline) normalize() {
	if b.Baselines == nil {
		b.Baselines = make(map[string]CPUBaseline)
	}
	if len(b.Benchmarks) > 0 {
		if _, dup := b.Baselines[b.CPU]; !dup {
			b.Baselines[b.CPU] = CPUBaseline{Benchmarks: b.Benchmarks}
		}
		b.CPU, b.Benchmarks = "", nil
	}
}

// benchLine matches "BenchmarkName[-P]  iters  N ns/op [... M allocs/op]",
// capturing the GOMAXPROCS suffix go test appends under -cpu.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s([\d.]+) allocs/op)?`)

// parse reads go test -bench output. Each result is recorded twice: under
// its suffixed name exactly as printed ("BenchmarkFoo-4"), so a -cpu list
// gates every parallelism level the baseline records, and under the plain
// name, where the FIRST occurrence wins — with -cpu 1,4 that is the -cpu 1
// run, keeping plain-name baselines pinned to the sequential configuration
// they were recorded at.
func parse(r io.Reader) (cpu string, results map[string]Entry, err error) {
	results = make(map[string]Entry)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		allocs := 0.0
		if m[4] != "" {
			allocs, _ = strconv.ParseFloat(m[4], 64)
		}
		e := Entry{NsPerOp: ns, AllocsPerOp: allocs}
		if m[2] != "" {
			results[m[1]+m[2]] = e
		}
		if _, seen := results[m[1]]; !seen {
			results[m[1]] = e
		}
	}
	return cpu, results, sc.Err()
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_sched.json", "committed baseline JSON")
	inputPath := flag.String("input", "-", "go test -bench output ('-' = stdin)")
	tolerance := flag.Float64("tolerance", 0.20, "allowed relative regression")
	gateMode := flag.String("gate", "auto", "what gates hard: 'allocs' (deterministic only), 'all', or 'auto' (ns/op gates when this cpu has a recorded baseline — use 'allocs' on shared CI runners, whose generic cpu string can collide across unlike hardware)")
	update := flag.Bool("update", false, "merge this run into the baseline's entry for this cpu instead of comparing")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cpu, results, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines in %s", *inputPath))
	}

	if *update {
		var base Baseline
		if raw, err := os.ReadFile(*baselinePath); err == nil {
			if err := json.Unmarshal(raw, &base); err != nil {
				fatal(err)
			}
		}
		base.normalize()
		// Merge per benchmark: a partial run (one suite's -bench regex)
		// must not clobber this CPU's entries for the other suites.
		cb, ok := base.Baselines[cpu]
		if !ok || cb.Benchmarks == nil {
			cb = CPUBaseline{Benchmarks: map[string]Entry{}}
		}
		for name, e := range results {
			cb.Benchmarks[name] = e
		}
		base.Baselines[cpu] = cb
		out, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %s (%d benchmarks merged, %d now under cpu %q, %d cpu(s) total)\n",
			*baselinePath, len(results), len(cb.Benchmarks), cpu, len(base.Baselines))
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(err)
	}
	base.normalize()
	if len(base.Baselines) == 0 {
		fatal(fmt.Errorf("baseline %s holds no benchmark entries", *baselinePath))
	}
	// The entry for this machine's CPU when recorded; otherwise any entry
	// serves for the deterministic allocs gate (they must all agree).
	entry, cpuMatched := base.Baselines[cpu]
	if !cpuMatched {
		names := make([]string, 0, len(base.Baselines))
		for name := range base.Baselines {
			names = append(names, name)
		}
		sort.Strings(names)
		entry = base.Baselines[names[0]]
	}
	var gateTime bool
	switch *gateMode {
	case "all":
		gateTime = true
		if !cpuMatched {
			fmt.Printf("benchdiff: WARNING: -gate all with no baseline for cpu %q — ns/op gates against another machine's numbers\n", cpu)
		}
	case "allocs":
		gateTime = false
	case "auto":
		gateTime = cpuMatched && cpu != ""
	default:
		fatal(fmt.Errorf("unknown -gate mode %q (want allocs, all, or auto)", *gateMode))
	}
	if !gateTime {
		fmt.Printf("benchdiff: ns/op regressions warn instead of fail (gate=%s, cpu %q recorded=%v)\n",
			*gateMode, cpu, cpuMatched)
	}
	// Gate the intersection: each CI step feeds only its own suite's
	// -bench output, so baseline entries owned by other steps are noted,
	// not failed. An input that matches nothing is still a hard failure —
	// that is the typo'd-regex case the gate exists to catch.
	failed := false
	matched := 0
	var missing []string
	for _, name := range sortedNames(entry.Benchmarks) {
		want := entry.Benchmarks[name]
		got, ok := results[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		matched++
		failed = check(name, "allocs/op", want.AllocsPerOp, got.AllocsPerOp, *tolerance, true) || failed
		failed = check(name, "ns/op", want.NsPerOp, got.NsPerOp, *tolerance, gateTime) || failed
	}
	if len(missing) > 0 {
		fmt.Printf("benchdiff: note: %d baseline benchmark(s) not in this input (gated elsewhere): %s\n",
			len(missing), strings.Join(missing, ", "))
	}
	if matched == 0 {
		fmt.Printf("FAIL: input matches no baseline benchmark (gate misconfigured?)\n")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within %.0f%% of baseline\n", matched, *tolerance*100)
}

func sortedNames(m map[string]Entry) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// check reports one metric comparison, returning true on a gating failure.
func check(name, metric string, want, got, tolerance float64, gate bool) bool {
	if want <= 0 {
		return false
	}
	rel := (got - want) / want
	switch {
	case rel > tolerance && gate:
		fmt.Printf("FAIL %s: %s %.0f vs baseline %.0f (%+.1f%% > %.0f%%)\n",
			name, metric, got, want, rel*100, tolerance*100)
		return true
	case rel > tolerance:
		fmt.Printf("warn %s: %s %.0f vs baseline %.0f (%+.1f%%, not gated on this cpu)\n",
			name, metric, got, want, rel*100)
	case rel < -tolerance:
		fmt.Printf("note %s: %s improved %.1f%% — consider -update to ratchet the baseline\n",
			name, metric, -rel*100)
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
