// Command scheduler demonstrates the federation-wide elastic job scheduler
// (internal/sched): two tenants with a 3:1 weight ratio flood a two-cloud
// federation with competing MapReduce jobs. The scheduler arbitrates by
// weighted fair share, places jobs across both clouds, backfills small jobs
// past blocked wide ones, and the delivered core-second shares converge to
// the configured weights.
//
// Run with: go run ./examples/scheduler
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/nimbus"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	traceOut := flag.String("trace-out", "", "write scheduler decision trace JSONL to this file")
	metricsOut := flag.String("metrics-out", "", "write a final Prometheus text snapshot to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/trace while the run steps")
	flag.Parse()

	const seed = 42
	f := core.NewFederation(seed)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("cloud%d", i)
		c := f.AddCloud(nimbus.Config{
			Name: name, Hosts: 4,
			HostSpec: nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: 1.0},
			NICBW:    125 << 20, WANUp: 60 << 20, WANDown: 60 << 20,
			PricePerCoreHour: 0.08 + 0.04*float64(i),
		})
		m := vm.NewContentModel(seed+int64(i)*17, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	f.SetWANLatency("cloud0", "cloud1", 60*sim.Millisecond)

	cfg := sched.Config{}
	tracer := obs.NewTracer(4096)
	if *traceOut != "" || *metricsAddr != "" {
		cfg.Trace = tracer
	}
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", err)
			os.Exit(1)
		}
		defer tf.Close()
		tracer.SetSink(tf)
	}
	s := f.EnableScheduler(core.SchedulerOptions{Sched: cfg})
	s.AddTenant("gold", 3)
	s.AddTenant("silver", 1)

	// Two tenants submit competing jobs: 60 each, 4 workers x 2 cores, far
	// more than the 64-core federation can run at once. Every fifth gold
	// job is a wide 24-core job that blocks and exercises backfilling.
	job := mapreduce.Job{Name: "blast", NumMaps: 32, NumReduces: 1, MapCPU: 30, ReduceCPU: 2}
	ids := map[string][]string{}
	for i := 0; i < 60; i++ {
		for _, tenant := range []string{"gold", "silver"} {
			spec := sched.JobSpec{Tenant: tenant, Name: fmt.Sprintf("%s-%02d", tenant, i),
				Workers: 4, CoresPerWorker: 2, MR: job}
			if tenant == "gold" && i%5 == 4 {
				spec.Workers = 12
			}
			id, err := s.Submit(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "submit:", err)
				os.Exit(1)
			}
			ids[tenant] = append(ids[tenant], id)
		}
	}

	// Run while both tenants still hold a backlog, then measure shares.
	if *metricsAddr != "" {
		// Scrapes must not interleave with kernel events: the registry locks
		// around each scrape and the kernel steps in one-virtual-second
		// chunks under the same lock.
		var mu sync.Mutex
		s.Obs().SetScrapeLock(&mu)
		mux := http.NewServeMux()
		mux.Handle("/metrics", s.Obs().Handler())
		mux.Handle("/debug/trace", tracer.Handler())
		go http.ListenAndServe(*metricsAddr, mux)
		fmt.Printf("serving /metrics and /debug/trace on %s\n", *metricsAddr)
		// Pace virtual time: without a delay the whole 900-second run
		// finishes in tens of wall milliseconds and no scraper ever sees
		// the endpoints up.
		for now := sim.Time(0); now < 900*sim.Second; now += sim.Second {
			mu.Lock()
			f.K.RunUntil(now + sim.Second)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	} else {
		f.K.RunUntil(900 * sim.Second)
	}

	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", err)
			os.Exit(1)
		}
		if _, err := s.Obs().WriteTo(mf); err != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", err)
			os.Exit(1)
		}
		mf.Close()
	}

	perCloud := map[string]int{}
	done := 0
	for _, tenant := range []string{"gold", "silver"} {
		for _, id := range ids[tenant] {
			ji, _ := s.Poll(id)
			if ji.State == sched.Done {
				done++
			}
			if ji.Cloud != "" {
				perCloud[ji.Cloud]++
			}
		}
	}
	fmt.Printf("t=%v: %d jobs finished, %d dispatched, %d backfilled, placement: cloud0=%d cloud1=%d\n",
		f.K.Now(), done, s.Dispatched(), s.Backfills(), perCloud["cloud0"], perCloud["cloud1"])
	if ji, ok := s.Poll(ids["silver"][0]); ok {
		fmt.Printf("poll %s: state=%v cloud=%s wait=%v makespan=%v\n",
			ji.ID, ji.State, ji.Cloud, ji.Wait, ji.Result.Makespan)
	}

	shares := s.Shares()
	entitled := s.EntitledShares()
	t := metrics.NewTable("fair-share convergence (3:1 weights, 900 s of contention)",
		"tenant", "entitled", "delivered", "relative error")
	worst := 0.0
	for _, tenant := range []string{"gold", "silver"} {
		rel := math.Abs(shares[tenant]-entitled[tenant]) / entitled[tenant]
		if rel > worst {
			worst = rel
		}
		t.AddRowf(tenant, metrics.FmtPct(entitled[tenant]), metrics.FmtPct(shares[tenant]), metrics.FmtPct(rel))
	}
	fmt.Println(t)

	if len(perCloud) < 2 {
		fmt.Println("FAIL: jobs did not spread across both clouds")
		os.Exit(1)
	}
	if worst > 0.10 {
		fmt.Printf("FAIL: shares diverge from weights by %.1f%% (> 10%%)\n", worst*100)
		os.Exit(1)
	}
	fmt.Printf("OK: delivered shares within %.1f%% of configured weights; backfills=%d\n",
		worst*100, s.Backfills())
}
