// Quickstart: build a two-cloud federation, launch a virtual cluster
// spanning both clouds, and run a BLAST-style MapReduce job across them —
// the §II sky-computing scenario in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/nimbus"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	// A federation is a kernel + network + ViNe overlay + clouds.
	f := core.NewFederation(42)
	for i, name := range []string{"grid5000", "futuregrid"} {
		c := f.AddCloud(nimbus.Config{
			Name:             name,
			Hosts:            8,
			HostSpec:         nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: 1.0},
			NICBW:            125 << 20, // 1 Gb/s NICs
			WANUp:            125 << 20,
			WANDown:          125 << 20,
			PricePerCoreHour: 0.08 + 0.04*float64(i),
		})
		// Seed the base image at each site's repository.
		m := vm.NewContentModel(int64(i)*7+1, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	f.SetWANLatency("grid5000", "futuregrid", 60*sim.Millisecond) // transatlantic

	// Provision a 16-VM virtual cluster: half in France, half in the USA.
	f.CreateCluster("sky", core.ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
		Distribution: map[string]int{"grid5000": 8, "futuregrid": 8},
	}, func(vc *core.VirtualCluster, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cluster up: %d VMs across 2 clouds at t=%v\n", vc.Size(), f.K.Now())

		// Run MapReduce BLAST over the federated cluster.
		err = vc.RunJob(mapreduce.BlastJob(128), func(res mapreduce.Result) {
			t := metrics.NewTable("BLAST on a sky-computing cluster",
				"metric", "value")
			t.AddRowf("makespan", res.Makespan.String())
			t.AddRowf("maps executed", res.MapsExecuted)
			t.AddRowf("shuffle volume", metrics.FmtBytes(res.ShuffleBytes))
			t.AddRowf("cross-cloud shuffle", metrics.FmtBytes(res.CrossSiteShuffleBytes))
			t.AddRowf("WAN bytes total", metrics.FmtBytes(f.Net.TotalWANBytes()))
			fmt.Println(t)
		})
		if err != nil {
			log.Fatal(err)
		}
	})

	// Drive the simulation to completion.
	f.K.Run()
}
