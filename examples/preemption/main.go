// Command preemption demonstrates revocable placement on the capacity
// ledger (internal/sched + internal/capacity): a burst of backfilled jobs
// with optimistic runtime estimates blocks a wide head job far past its
// reservation. Reservation aging detects the consecutive start slips,
// spot-priced eviction tears down the cheapest subset of the backfilled
// jobs (their committed cores become the head's shield reservation in one
// atomic ledger transition), the head's gang starts on the freed cores,
// and the victims requeue with queue-position and progress credit and
// still finish.
//
// Run with: go run ./examples/preemption
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/nimbus"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	const seed = 42
	f := core.NewFederation(seed)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("cloud%d", i)
		c := f.AddCloud(nimbus.Config{
			Name: name, Hosts: 4,
			HostSpec: nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: 1.0},
			NICBW:    125 << 20, WANUp: 60 << 20, WANDown: 60 << 20,
			PricePerCoreHour: 0.08 + 0.04*float64(i),
		})
		m := vm.NewContentModel(seed+int64(i)*17, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	f.SetWANLatency("cloud0", "cloud1", 60*sim.Millisecond)

	s := f.EnableScheduler(core.SchedulerOptions{Sched: sched.Config{EnablePreemption: true}})
	s.AddTenant("batch", 1)

	submit := func(name string, workers int, est float64, mr mapreduce.Job) string {
		id, err := s.Submit(sched.JobSpec{Tenant: "batch", Name: name, Workers: workers,
			CoresPerWorker: 2, EstimateSeconds: est, MR: mr})
		if err != nil {
			fmt.Fprintln(os.Stderr, "submit:", err)
			os.Exit(1)
		}
		return id
	}

	// Two honest holders take 16 cores on each 32-core cloud until ~t=70.
	mrHold := mapreduce.Job{Name: "hold", NumMaps: 16, NumReduces: 1, MapCPU: 55, ReduceCPU: 1}
	submit("hold0", 8, 60, mrHold)
	submit("hold1", 8, 60, mrHold)
	// The head needs 48 cores — wider than either cloud, so it will span
	// both once 48 cores are free. Its reservation lands at the holders'
	// estimated release.
	head := submit("head", 24, 60, mapreduce.Job{Name: "head", NumMaps: 48, NumReduces: 2,
		MapCPU: 45, ReduceCPU: 2, ShuffleBytesPerMapPerReduce: 1 << 18})
	// The burst: four 8-core jobs estimating 50 s (they fit under the
	// reservation, so they backfill) but carrying ~250 s of real map work.
	var burst []string
	for i := 0; i < 4; i++ {
		burst = append(burst, submit(fmt.Sprintf("burst%d", i), 4, 50,
			mapreduce.Job{Name: "burst", NumMaps: 16, NumReduces: 1, MapCPU: 120, ReduceCPU: 1}))
	}

	f.K.Run()

	hi, _ := s.Poll(head)
	fmt.Printf("head: started=%v makespan=%v (reservation aged %d time(s); %d evictions, %d of them forced)\n",
		hi.Started, hi.Finished-hi.Submitted, s.ReservationAgings(), s.Preemptions(), s.ForcedPreemptions())
	victimsDone := 0
	for _, id := range burst {
		ji, _ := s.Poll(id)
		fmt.Printf("%s: state=%v evictions=%d started(final)=%v finished=%v\n",
			ji.Name, ji.State, ji.Preemptions, ji.Started, ji.Finished)
		if ji.State == sched.Done {
			victimsDone++
		}
	}
	fmt.Printf("ledger: %d eviction transitions, %d retargets\n",
		f.CapacityLedger().Evictions, f.CapacityLedger().Retargets)

	if hi.State != sched.Done {
		fmt.Println("FAIL: head never finished")
		os.Exit(1)
	}
	if s.Preemptions() == 0 {
		fmt.Println("FAIL: no evictions — the head waited for the burst to drain")
		os.Exit(1)
	}
	if hi.Started > 150*sim.Second {
		fmt.Printf("FAIL: head started at %v, no better than wait-for-release (~255 s)\n", hi.Started)
		os.Exit(1)
	}
	if victimsDone != len(burst) {
		fmt.Printf("FAIL: %d of %d evicted jobs never completed\n", len(burst)-victimsDone, len(burst))
		os.Exit(1)
	}
	fmt.Printf("OK: head started at %v instead of ~255 s; all %d victims requeued and finished\n",
		hi.Started, len(burst))
}
