// Migratable spot instances example (§IV): run a job on spot VMs; when the
// spot price spikes above the bid, the federation live-migrates the revoked
// VMs to another cloud instead of killing them, and the job keeps all its
// completed work.
//
//	go run ./examples/spot-migration
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/nimbus"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	for _, migratable := range []bool{false, true} {
		mode := "kill + manual restart"
		if migratable {
			mode = "migratable spot (§IV)"
		}
		fmt.Printf("=== %s ===\n", mode)
		run(migratable)
		fmt.Println()
	}
}

func run(migratable bool) {
	f := core.NewFederation(21)
	for i, name := range []string{"spot-cloud", "backup-cloud"} {
		c := f.AddCloud(nimbus.Config{
			Name: name, Hosts: 8,
			HostSpec: nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: 1.0},
			NICBW:    125 << 20, WANUp: 125 << 20, WANDown: 125 << 20,
			PricePerCoreHour: 0.10,
		})
		m := vm.NewContentModel(int64(i)*5+2, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	f.SetWANLatency("spot-cloud", "backup-cloud", 60*sim.Millisecond)

	f.CreateCluster("spotjob", core.ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
		Spot: true, Bid: 0.05,
		Distribution: map[string]int{"spot-cloud": 6},
	}, func(vc *core.VirtualCluster, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if migratable {
			vc.WireSpotMigration("spot-cloud")
		} else {
			vc.WireSpotKill("spot-cloud")
		}
		err = vc.RunJob(mapreduce.BlastJob(96), func(res mapreduce.Result) {
			fmt.Printf("job done at %v: %d maps executed (%d wasted)\n",
				f.K.Now(), res.MapsExecuted, res.MapsExecuted-96)
			fmt.Printf("spot events: %d migrations, %d kills\n",
				f.SpotMigrations, f.SpotKills)
		})
		if err != nil {
			log.Fatal(err)
		}
		// Price spike at t=120s: all six spot VMs are out-bid.
		f.K.Schedule(120*sim.Second, func() {
			fmt.Printf("t=%v: spot price spikes $0.05 -> $0.50\n", f.K.Now())
			f.Cloud("spot-cloud").Spot.ForcePrice(0.50)
		})
		if !migratable {
			// Without migratable spot, a user script must re-provision.
			f.K.Schedule(150*sim.Second, func() {
				vc.GrowOnDemand("backup-cloud", 6, func(err error) {
					if err != nil {
						log.Fatal(err)
					}
					fmt.Printf("t=%v: re-provisioned 6 on-demand replacements\n", f.K.Now())
				})
			})
		}
	})
	f.K.Run()
}
