// Shrinker example: live-migrate an 8-VM virtual cluster between two clouds
// over a WAN, with and without Shrinker's distributed deduplication, and
// compare migration time, downtime, and WAN traffic (§III-A).
//
//	go run ./examples/shrinker
package main

import (
	"fmt"

	"repro/internal/dedup"
	"repro/internal/metrics"
	"repro/internal/migration"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vm"
)

const mb = 1 << 20

func buildCluster(seed int64) (*sim.Kernel, *simnet.Network, []migration.Move) {
	k := sim.NewKernel(seed)
	net := simnet.New(k)
	src := net.AddSite("rennes", 125*mb, 125*mb)
	dst := net.AddSite("chicago", 125*mb, 125*mb)
	net.SetSiteLatency("rennes", "chicago", 60*sim.Millisecond)
	srcHost := src.AddNode("rennes/h0", 1<<30)
	dstHost := dst.AddNode("chicago/h0", 1<<30)

	moves := make([]migration.Move, 8)
	for i := range moves {
		// Same base image across the cluster: 10% zero pages, 35% from the
		// image's shared pool — the redundancy Shrinker exploits.
		m := vm.NewContentModel(seed+int64(i), "debian", 0.10, 0.35, 8192)
		v := vm.New(fmt.Sprintf("web%02d", i), "debian", 2, 16384, m, nil)
		v.Attach(vm.WebServerWorkload(m, seed+int64(i)*13))
		moves[i] = migration.Move{VM: v, Src: srcHost, Dst: dstHost}
	}
	return k, net, moves
}

func main() {
	t := metrics.NewTable("8-VM virtual cluster migration, Rennes -> Chicago (1 Gb/s WAN, 60 ms)",
		"method", "total time", "max downtime", "WAN traffic", "pages deduped")
	var baseline migration.ClusterResult
	for _, shrinker := range []bool{false, true} {
		k, net, moves := buildCluster(1)
		opts := migration.Options{}
		name := "pre-copy (KVM baseline)"
		if shrinker {
			opts.Registry = dedup.NewRegistry("site:chicago")
			name = "Shrinker"
		}
		var res migration.ClusterResult
		migration.MigrateCluster(net, moves, opts, 2, func(c migration.ClusterResult) { res = c })
		k.Run()
		var deduped int64
		for _, r := range res.Results {
			deduped += r.PagesDeduped
		}
		t.AddRowf(name, res.TotalTime.String(), res.MaxDowntime.String(),
			metrics.FmtBytes(net.WANBytes("rennes", "chicago")), deduped)
		if !shrinker {
			baseline = res
		} else {
			fmt.Printf("bandwidth saving: %s, time saving: %s\n",
				metrics.FmtPct(1-float64(res.WireBytes)/float64(baseline.WireBytes)),
				metrics.FmtPct(1-res.TotalTime.Seconds()/baseline.TotalTime.Seconds()))
		}
	}
	fmt.Println()
	fmt.Println(t)
}
