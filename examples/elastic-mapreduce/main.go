// Elastic MapReduce example (§IV): submit a deadline job to the EMR service
// over a three-cloud federation; watch it provision extra workers on the
// cheapest cloud when the deadline is at risk, then release them.
//
//	go run ./examples/elastic-mapreduce
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/emr"
	"repro/internal/mapreduce"
	"repro/internal/nimbus"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	f := core.NewFederation(7)
	type cloudDef struct {
		name  string
		price float64
		speed float64
	}
	for i, d := range []cloudDef{
		{"private", 0.02, 1.0},  // cheap but ordinary
		{"eu-cloud", 0.08, 1.2}, // mid
		{"us-cloud", 0.20, 2.0}, // fast but expensive
	} {
		c := f.AddCloud(nimbus.Config{
			Name: d.name, Hosts: 16,
			HostSpec: nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: d.speed},
			NICBW:    125 << 20, WANUp: 125 << 20, WANDown: 125 << 20,
			PricePerCoreHour: d.price,
		})
		m := vm.NewContentModel(int64(i)*11+3, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}

	f.CreateCluster("emr", core.ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
		Distribution: map[string]int{"private": 4},
	}, func(vc *core.VirtualCluster, err error) {
		if err != nil {
			log.Fatal(err)
		}
		job := mapreduce.Job{Name: "genomics", NumMaps: 160, NumReduces: 2,
			MapCPU: 25, ReduceCPU: 5, ShuffleBytesPerMapPerReduce: 512 << 10}
		deadline := f.K.Now() + 500*sim.Second

		svc := emr.New(core.EMRAdapter{VC: vc}, emr.SelectCheapest)
		err = svc.Submit(emr.JobSpec{Job: job, Deadline: deadline, SlotsPerWorker: 2},
			func(rep emr.Report) {
				fmt.Printf("job %q finished at %v (deadline %v)\n", rep.Job, rep.FinishedAt, rep.Deadline)
				fmt.Printf("  deadline met: %v\n", rep.MetDeadline)
				fmt.Printf("  scale-ups: %d, workers added: %d (policy: %s)\n",
					rep.ScaleUps, rep.WorkersAdded, rep.Policy)
				released := svc.ReleaseExtras(rep.WorkersAdded)
				fmt.Printf("  released %d extra workers after completion\n", released)
				var cost float64
				for _, c := range f.Clouds() {
					cost += c.Cost()
				}
				fmt.Printf("  total compute cost: $%.3f\n", cost)
			})
		if err != nil {
			log.Fatal(err)
		}
	})
	f.K.Run()
}
