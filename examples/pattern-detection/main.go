// Pattern-detection example (§III-C): run a shuffle-heavy MapReduce job on
// a federated cluster while a passive hypervisor-level monitor (sampled
// packet capture) infers the traffic matrix; compare it with the invasive
// ground truth and feed it to the communication-aware placer.
//
//	go run ./examples/pattern-detection
package main

import (
	"fmt"
	"log"

	"repro/internal/autonomic"
	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/netmon"
	"repro/internal/nimbus"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	f := core.NewFederation(33)
	for i, name := range []string{"east", "west"} {
		c := f.AddCloud(nimbus.Config{
			Name: name, Hosts: 8,
			HostSpec: nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: 1.0},
			NICBW:    125 << 20, WANUp: 125 << 20, WANDown: 125 << 20,
			PricePerCoreHour: 0.10,
		})
		m := vm.NewContentModel(int64(i)*3+9, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	f.SetWANLatency("east", "west", 60*sim.Millisecond)

	// Invasive baseline (exact) vs passive sampled capture (1-in-10).
	truth := netmon.New(f.Net, 1.0, 1, "shuffle:")
	passive := netmon.New(f.Net, 0.1, 2, "shuffle:")

	f.CreateCluster("app", core.ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
		Distribution: map[string]int{"east": 4, "west": 4},
	}, func(vc *core.VirtualCluster, err error) {
		if err != nil {
			log.Fatal(err)
		}
		err = vc.RunJob(mapreduce.SortJob(32, 8), func(res mapreduce.Result) {
			corr := netmon.Correlation(truth.Matrix(), passive.Matrix())
			p, r := netmon.PrecisionRecall(truth.Matrix(), passive.Matrix(), 4<<20)
			t := metrics.NewTable("passive (sampled 1/10) vs invasive capture",
				"metric", "value")
			t.AddRowf("traffic-matrix correlation", fmt.Sprintf("%.4f", corr))
			t.AddRowf("edge precision", fmt.Sprintf("%.2f", p))
			t.AddRowf("edge recall", fmt.Sprintf("%.2f", r))
			t.AddRowf("edges observed", len(passive.Matrix()))
			fmt.Println(t)

			// Feed the inferred matrix to the communication-aware placer.
			var vms []string
			for _, v := range vc.VMs() {
				vms = append(vms, v.Name)
			}
			nodeVM := map[string]string{}
			for _, v := range vc.VMs() {
				if c := f.CloudOf(v.Name); c != nil {
					if h := c.HostOf(v.Name); h != nil {
						nodeVM[h.Node.ID] = v.Name
					}
				}
			}
			vmTraffic := make(netmon.Matrix)
			for e, b := range passive.Matrix() {
				if a, ok1 := nodeVM[e[0]]; ok1 {
					if bb, ok2 := nodeVM[e[1]]; ok2 {
						vmTraffic.Add(a, bb, b)
					}
				}
			}
			sites := []string{"east", "west"}
			cap := map[string]int{"east": 4, "west": 4}
			placement := autonomic.PlaceCommunicationAware(vms, vmTraffic, sites, cap, nil)
			autonomic.RefineKL(placement, vmTraffic, 64)
			cur := autonomic.Assignment{}
			for _, v := range vc.VMs() {
				cur[v.Name] = f.CloudOf(v.Name).Name
			}
			fmt.Printf("cross-cloud traffic: current placement %s, comm-aware placement %s\n",
				metrics.FmtBytes(autonomic.CutBytes(cur, vmTraffic)),
				metrics.FmtBytes(autonomic.CutBytes(placement, vmTraffic)))
		})
		if err != nil {
			log.Fatal(err)
		}
	})
	f.K.Run()
}
