// Autonomic adaptation example (§III-C): a federation watches spot-market
// style price signals and free capacity; the cost policy relocates a
// running cluster to the cheaper cloud via inter-cloud live migration while
// its job keeps executing.
//
//	go run ./examples/autonomic
package main

import (
	"fmt"
	"log"

	"repro/internal/autonomic"
	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/nimbus"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	f := core.NewFederation(5)
	for i, d := range []struct {
		name  string
		price float64
	}{{"cheap-cloud", 0.05}, {"pricey-cloud", 0.15}} {
		c := f.AddCloud(nimbus.Config{
			Name: d.name, Hosts: 8,
			HostSpec: nimbus.HostSpec{Cores: 8, MemPages: 64 * 16384, Speed: 1.0},
			NICBW:    125 << 20, WANUp: 125 << 20, WANDown: 125 << 20,
			PricePerCoreHour: d.price,
		})
		m := vm.NewContentModel(int64(i)*13+1, "debian", 0.1, 0.5, 2048)
		c.PutImage(vm.NewDiskImage("debian", 1024, 65536, m))
	}
	f.SetWANLatency("cheap-cloud", "pricey-cloud", 60*sim.Millisecond)

	// Start, deliberately, on the expensive cloud.
	f.CreateCluster("workload", core.ClusterSpec{
		Image: "debian", Cores: 2, MemPages: 8192, CoW: true,
		Distribution: map[string]int{"pricey-cloud": 4},
	}, func(vc *core.VirtualCluster, err error) {
		if err != nil {
			log.Fatal(err)
		}
		if err := vc.RunJob(mapreduce.BlastJob(192), func(res mapreduce.Result) {
			fmt.Printf("t=%v job finished: %d maps, %d wasted\n",
				f.K.Now(), res.MapsExecuted, res.MapsExecuted-192)
			fmt.Printf("cluster now at: cheap=%d pricey=%d VMs\n",
				len(vc.VMsAt("cheap-cloud")), len(vc.VMsAt("pricey-cloud")))
			var cost float64
			for _, c := range f.Clouds() {
				cost += c.Cost()
			}
			fmt.Printf("migrations: %d, WAN moved: %.1f MiB, compute cost: $%.3f\n",
				f.Migrations, float64(f.MigrationBytes)/(1<<20), cost)
			if eng := f.Engine(); eng != nil {
				eng.Stop()
				fmt.Printf("engine: %d evaluations, %d proposed, %d executed, %d rejected\n",
					eng.Evaluations, eng.Proposed, eng.Executed, eng.Rejected)
			}
		}); err != nil {
			log.Fatal(err)
		}
		// Keep workers bound to their (migrating) VMs.
		eng := f.EnableAutonomic(30*sim.Second, autonomic.CostPolicy{Threshold: 0.3})
		_ = eng
		fmt.Printf("t=%v cluster of %d VMs on pricey-cloud, autonomic cost policy armed\n",
			f.K.Now(), vc.Size())
	})
	f.K.Run()
}
